// Package result defines the learned module-network artifact: the module
// set, the scored regulators (parents) per module, the induced module graph
// (§2.1: edge Mⱼ→Mₖ iff some variable assigned to Mⱼ is a parent of Mₖ),
// serialization to XML (the Lemon-Tree interchange format) and JSON, and the
// accuracy metrics used to evaluate recovery against synthetic ground truth.
//
// As in the paper (§2.2 end), the learned graph need not be acyclic;
// EnforceAcyclic provides the post-processing step the paper defers to prior
// work, dropping the lowest-scored edges that close cycles.
package result

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
)

// Parent is one scored regulator of a module.
type Parent struct {
	Index int     `xml:"index,attr" json:"index"`
	Name  string  `xml:"name,attr" json:"name"`
	Score float64 `xml:"score,attr" json:"score"`
	Count int     `xml:"count,attr" json:"count"`
}

// Module is one learned module.
type Module struct {
	ID             int      `xml:"id,attr" json:"id"`
	Variables      []int    `xml:"variables>var" json:"variables"`
	VariableNames  []string `xml:"-" json:"variableNames,omitempty"`
	Parents        []Parent `xml:"parents>parent" json:"parents"`
	ParentsUniform []Parent `xml:"randomParents>parent" json:"parentsUniform,omitempty"`
}

// Network is a learned module network.
type Network struct {
	XMLName xml.Name `xml:"moduleNetwork" json:"-"`
	// N and M echo the data set shape the network was learned from.
	N       int      `xml:"variables,attr" json:"n"`
	M       int      `xml:"observations,attr" json:"m"`
	Names   []string `xml:"-" json:"names,omitempty"`
	Modules []Module `xml:"module" json:"modules"`
}

// Validate checks structural sanity: variable indices in range and no
// variable in two modules.
func (n *Network) Validate() error {
	seen := map[int]int{}
	for _, mod := range n.Modules {
		for _, v := range mod.Variables {
			if v < 0 || v >= n.N {
				return fmt.Errorf("result: module %d has variable %d outside [0,%d)", mod.ID, v, n.N)
			}
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("result: variable %d in modules %d and %d", v, prev, mod.ID)
			}
			seen[v] = mod.ID
		}
		for _, p := range mod.Parents {
			if p.Index < 0 || p.Index >= n.N {
				return fmt.Errorf("result: module %d parent %d out of range", mod.ID, p.Index)
			}
		}
	}
	return nil
}

// ModuleOf returns the variable → module-ID assignment (−1 for variables in
// no module).
func (n *Network) ModuleOf() []int {
	assign := make([]int, n.N)
	for i := range assign {
		assign[i] = -1
	}
	for _, mod := range n.Modules {
		for _, v := range mod.Variables {
			assign[v] = mod.ID
		}
	}
	return assign
}

// Edge is a directed module-graph edge with the strength of its strongest
// supporting parent.
type Edge struct {
	From, To int
	Score    float64
}

// ModuleGraph returns the module-level DAG edges of §2.1: Mⱼ→Mₖ when a
// variable assigned to Mⱼ is a scored parent of Mₖ. Parents not assigned to
// any module induce no edge. Edges are sorted (From, To).
func (n *Network) ModuleGraph() []Edge {
	assign := n.ModuleOf()
	type key struct{ from, to int }
	best := map[key]float64{}
	for _, mod := range n.Modules {
		for _, p := range mod.Parents {
			from := assign[p.Index]
			if from < 0 || from == mod.ID {
				continue
			}
			k := key{from, mod.ID}
			if p.Score > best[k] {
				best[k] = p.Score
			}
		}
	}
	edges := make([]Edge, 0, len(best))
	for k, s := range best {
		edges = append(edges, Edge{From: k.from, To: k.to, Score: s})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// EnforceAcyclic returns the module graph with the smallest-score edges
// removed until no directed cycle remains — the post-processing step the
// paper notes is required to obtain a true MoNet DAG. Edges are considered
// in descending score order and kept only if they close no cycle.
func EnforceAcyclic(edges []Edge, numModules int) []Edge {
	ordered := append([]Edge(nil), edges...)
	sort.Slice(ordered, func(i, j int) bool {
		//parsivet:floateq — exact compare of identical-provenance scores; ties break on (From,To)
		if ordered[i].Score != ordered[j].Score {
			return ordered[i].Score > ordered[j].Score
		}
		if ordered[i].From != ordered[j].From {
			return ordered[i].From < ordered[j].From
		}
		return ordered[i].To < ordered[j].To
	})
	adj := make([][]int, numModules)
	var kept []Edge
	for _, e := range ordered {
		if reaches(adj, e.To, e.From) {
			continue // would close a cycle
		}
		adj[e.From] = append(adj[e.From], e.To)
		kept = append(kept, e)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].From != kept[j].From {
			return kept[i].From < kept[j].From
		}
		return kept[i].To < kept[j].To
	})
	return kept
}

// reaches reports whether to is reachable from from in adj.
func reaches(adj [][]int, from, to int) bool {
	if from == to {
		return true
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if w == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// IsAcyclic reports whether the edge set has no directed cycle.
func IsAcyclic(edges []Edge, numModules int) bool {
	adj := make([][]int, numModules)
	indeg := make([]int, numModules)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	var queue []int
	for v := 0; v < numModules; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	visited := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return visited == numModules
}

// WriteXML serializes the network in the Lemon-Tree-style XML interchange
// format.
func (n *Network) WriteXML(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(n); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a network written by WriteXML.
func ReadXML(r io.Reader) (*Network, error) {
	var n Network
	if err := xml.NewDecoder(r).Decode(&n); err != nil {
		return nil, err
	}
	return &n, nil
}

// WriteJSON serializes the network as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// Equal reports whether two networks are identical in modules, membership,
// and parent scores — the paper's cross-implementation verification
// (§5.2.1: "exactly the same network").
func Equal(a, b *Network) bool {
	if a.N != b.N || a.M != b.M || len(a.Modules) != len(b.Modules) {
		return false
	}
	for i := range a.Modules {
		am, bm := a.Modules[i], b.Modules[i]
		if am.ID != bm.ID ||
			!intSliceEqual(am.Variables, bm.Variables) ||
			!parentsEqual(am.Parents, bm.Parents) ||
			!parentsEqual(am.ParentsUniform, bm.ParentsUniform) {
			return false
		}
	}
	return true
}

func intSliceEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parentsEqual(a, b []Parent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//parsivet:floateq — bit-identity is the point: §5.2.1 "exactly the same network"
		if a[i].Index != b[i].Index || a[i].Score != b[i].Score || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

// AdjustedRandIndex measures agreement between two labelings of the same
// items, corrected for chance: 1 is identical partitions, ~0 is random
// agreement. Items labeled −1 in either labeling are excluded (variables
// outside any module).
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic("result: ARI inputs differ in length")
	}
	// Contingency table over included items.
	counts := map[[2]int]int{}
	aCounts := map[int]int{}
	bCounts := map[int]int{}
	n := 0
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			continue
		}
		n++
		counts[[2]int{a[i], b[i]}]++
		aCounts[a[i]]++
		bCounts[b[i]]++
	}
	if n < 2 {
		return 0
	}
	// The pair counts are accumulated in exact integers so the sums are
	// independent of map-iteration order; summing float64 terms here made
	// the ARI vary in the last ULP from run to run.
	choose2 := func(x int) int64 { return int64(x) * int64(x-1) / 2 }
	var sumNij, sumAi, sumBj int64
	//parsivet:ordered — integer sum, associative, order-free
	for _, c := range counts {
		sumNij += choose2(c)
	}
	//parsivet:ordered — integer sum, associative, order-free
	for _, c := range aCounts {
		sumAi += choose2(c)
	}
	//parsivet:ordered — integer sum, associative, order-free
	for _, c := range bCounts {
		sumBj += choose2(c)
	}
	total := choose2(n)
	expected := float64(sumAi) * float64(sumBj) / float64(total)
	maxIndex := float64(sumAi+sumBj) / 2
	//parsivet:floateq — zero-denominator guard for the division below
	if maxIndex == expected {
		return 0
	}
	return (float64(sumNij) - expected) / (maxIndex - expected)
}

// PrecisionAtK returns the fraction of the top-k ranked items that appear in
// the truth set.
func PrecisionAtK(ranked []int, truth map[int]bool, k int) float64 {
	if k <= 0 || len(ranked) == 0 {
		return 0
	}
	k = min(k, len(ranked))
	hits := 0
	for _, v := range ranked[:k] {
		if truth[v] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// MeanAveragePrecision computes the average precision of a ranking against a
// truth set (1.0 when all truth items are ranked first).
func MeanAveragePrecision(ranked []int, truth map[int]bool) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	hits := 0
	var sum float64
	for i, v := range ranked {
		if truth[v] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(len(truth))
}

// WriteDOT renders the module graph in GraphViz DOT format: one box per
// module (sized label) and one edge per module-graph edge, weighted by
// score. Pass the output of ModuleGraph or EnforceAcyclic.
func (n *Network) WriteDOT(w io.Writer, edges []Edge) error {
	if _, err := fmt.Fprintln(w, "digraph modulenetwork {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box];")
	for _, mod := range n.Modules {
		fmt.Fprintf(w, "  M%d [label=\"M%d\\n%d genes\"];\n", mod.ID, mod.ID, len(mod.Variables))
	}
	for _, e := range edges {
		fmt.Fprintf(w, "  M%d -> M%d [label=\"%.2f\"];\n", e.From, e.To, e.Score)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
