package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymSetAt(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 2, 5)
	if s.At(0, 2) != 5 || s.At(2, 0) != 5 {
		t.Fatal("Set must mirror")
	}
}

func TestFromDenseValidates(t *testing.T) {
	if _, err := FromDense(2, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong size accepted")
	}
	if _, err := FromDense(2, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("asymmetric accepted")
	}
	if _, err := FromDense(2, []float64{1, 2, 2, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 2)
	s.Set(0, 1, 1)
	s.Set(1, 1, 3)
	y := make([]float64, 2)
	s.MulVec([]float64{1, 2}, y)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("got %v, want [4 7]", y)
	}
}

func TestSubmatrix(t *testing.T) {
	s := NewSym(3)
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			s.Set(i, j, float64(10*i+j))
		}
	}
	sub := s.Submatrix([]int{0, 2})
	if sub.N != 2 || sub.At(0, 1) != s.At(0, 2) || sub.At(1, 1) != s.At(2, 2) {
		t.Fatalf("submatrix wrong: %+v", sub)
	}
}

func TestNorm2(t *testing.T) {
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("3-4-5")
	}
	if Norm2(nil) != 0 {
		t.Fatal("empty")
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 1)
	s.Set(1, 1, 5)
	s.Set(2, 2, 2)
	res := PowerIteration(s, 1000, 1e-12)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Value-5) > 1e-6 {
		t.Fatalf("eigenvalue %v, want 5", res.Value)
	}
	if math.Abs(math.Abs(res.Vector[1])-1) > 1e-4 {
		t.Fatalf("eigenvector %v, want e1", res.Vector)
	}
}

func TestPowerIterationBlockStructure(t *testing.T) {
	// Two blocks: a dense 3-clique (weight 1) and a 2-clique; the Perron
	// vector must concentrate on the 3-clique.
	s := NewSym(5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s.Set(i, j, 1)
		}
	}
	for i := 3; i < 5; i++ {
		for j := 3; j < 5; j++ {
			s.Set(i, j, 1)
		}
	}
	res := PowerIteration(s, 1000, 1e-12)
	if math.Abs(res.Value-3) > 1e-6 {
		t.Fatalf("eigenvalue %v, want 3", res.Value)
	}
	for i := 0; i < 3; i++ {
		if res.Vector[i] < 0.5 {
			t.Fatalf("clique member %d weight %v too small", i, res.Vector[i])
		}
	}
	for i := 3; i < 5; i++ {
		if math.Abs(res.Vector[i]) > 1e-4 {
			t.Fatalf("non-member %d weight %v too large", i, res.Vector[i])
		}
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	s := NewSym(4)
	res := PowerIteration(s, 100, 1e-10)
	if !res.Converged || res.Value != 0 {
		t.Fatalf("zero matrix: %+v", res)
	}
}

func TestPowerIterationEmpty(t *testing.T) {
	res := PowerIteration(NewSym(0), 10, 1e-10)
	if !res.Converged {
		t.Fatal("empty matrix must converge trivially")
	}
}

func TestPowerIterationDeterministic(t *testing.T) {
	s := NewSym(6)
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			s.Set(i, j, float64((i*7+j*3)%5))
		}
	}
	a := PowerIteration(s, 500, 1e-12)
	b := PowerIteration(s, 500, 1e-12)
	if a.Value != b.Value || a.Iters != b.Iters {
		t.Fatal("power iteration not deterministic")
	}
	for i := range a.Vector {
		if a.Vector[i] != b.Vector[i] {
			t.Fatal("eigenvector not deterministic")
		}
	}
}

// TestPowerIterationRayleighBound: for symmetric non-negative matrices the
// returned value must satisfy the eigen-equation approximately.
func TestPowerIterationResidual(t *testing.T) {
	check := func(raw []uint8) bool {
		n := 4
		if len(raw) < n*n {
			return true
		}
		s := NewSym(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				s.Set(i, j, float64(raw[i*n+j]%8))
			}
		}
		res := PowerIteration(s, 5000, 1e-12)
		if !res.Converged {
			return true // ties may not converge; not a correctness failure
		}
		// ‖Sv − λv‖ should be small relative to λ.
		y := make([]float64, n)
		s.MulVec(res.Vector, y)
		var resid float64
		for i := range y {
			d := y[i] - res.Value*res.Vector[i]
			resid += d * d
		}
		return math.Sqrt(resid) <= 1e-4*(1+res.Value)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPowerIteration64(b *testing.B) {
	s := NewSym(64)
	for i := 0; i < 64; i++ {
		for j := i; j < 64; j++ {
			s.Set(i, j, float64((i+j)%3))
		}
	}
	for i := 0; i < b.N; i++ {
		PowerIteration(s, 200, 1e-10)
	}
}
