// Package matrix provides the small dense linear-algebra kernel the
// consensus-clustering task needs: symmetric matrices and deterministic
// power iteration for the dominant eigenpair (Michoel & Nachtergaele 2012
// use the Perron eigenvector of the non-negative co-occurrence matrix to
// peel off consensus clusters).
package matrix

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric n×n matrix in row-major full storage.
type Sym struct {
	N int
	A []float64
}

// NewSym returns a zero n×n symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{N: n, A: make([]float64, n*n)}
}

// FromDense wraps an existing row-major n×n buffer. It returns an error if
// the buffer has the wrong size or is not symmetric.
func FromDense(n int, a []float64) (*Sym, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("matrix: %d values for %d×%d", len(a), n, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			//parsivet:floateq — symmetry validation wants bit equality of mirrored cells
			if a[i*n+j] != a[j*n+i] {
				return nil, fmt.Errorf("matrix: not symmetric at (%d,%d)", i, j)
			}
		}
	}
	return &Sym{N: n, A: a}, nil
}

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 { return s.A[i*s.N+j] }

// Set assigns element (i, j) and its mirror (j, i).
func (s *Sym) Set(i, j int, v float64) {
	s.A[i*s.N+j] = v
	s.A[j*s.N+i] = v
}

// MulVec computes y = S·x. x and y must have length N and must not alias.
func (s *Sym) MulVec(x, y []float64) {
	for i := 0; i < s.N; i++ {
		row := s.A[i*s.N : (i+1)*s.N]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
}

// Submatrix returns the symmetric matrix restricted to the given index set
// (in the given order).
func (s *Sym) Submatrix(idx []int) *Sym {
	sub := NewSym(len(idx))
	for a, i := range idx {
		for b, j := range idx {
			sub.A[a*sub.N+b] = s.At(i, j)
		}
	}
	return sub
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// PowerResult is the outcome of a power iteration.
type PowerResult struct {
	// Value is the dominant eigenvalue estimate (Rayleigh quotient) and
	// Vector the corresponding unit eigenvector.
	Value  float64
	Vector []float64
	// Iters is the number of iterations performed; Converged reports
	// whether the tolerance was met before the iteration cap.
	Iters     int
	Converged bool
}

// PowerIteration estimates the dominant eigenpair of s, starting from the
// deterministic uniform vector. For the non-negative matrices produced by
// co-occurrence accumulation the dominant eigenvalue is the Perron root and
// the eigenvector is entrywise non-negative. A zero matrix returns Value 0
// with the start vector.
func PowerIteration(s *Sym, maxIter int, tol float64) PowerResult {
	n := s.N
	if n == 0 {
		return PowerResult{Converged: true}
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda float64
	for it := 1; it <= maxIter; it++ {
		s.MulVec(x, y)
		norm := Norm2(y)
		//parsivet:floateq — exact-zero null-space test; a sum of squares is 0 iff all terms are
		if norm == 0 {
			// x is in the null space; for non-negative matrices this
			// means the matrix is zero on the support of x.
			return PowerResult{Value: 0, Vector: x, Iters: it, Converged: true}
		}
		for i := range y {
			y[i] /= norm
		}
		// Rayleigh quotient λ = xᵀSx with the normalized iterate.
		s.MulVec(y, x) // reuse x as scratch for S·y
		var rq float64
		for i := range y {
			rq += y[i] * x[i]
		}
		// Convergence on the eigenvalue estimate.
		done := math.Abs(rq-lambda) <= tol*(1+math.Abs(rq))
		lambda = rq
		copy(x, y)
		if done {
			return PowerResult{Value: lambda, Vector: x, Iters: it, Converged: true}
		}
	}
	return PowerResult{Value: lambda, Vector: x, Iters: maxIter, Converged: false}
}
