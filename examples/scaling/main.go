// Scaling reproduces the paper's Fig. 6 strong-scaling study in miniature:
// it measures a sequential instrumented run, verifies the parallel engine
// against it at small rank counts on the real message-passing runtime, and
// projects the run time to thousands of ranks with the calibrated
// work-and-communication model (see DESIGN.md §2 for why large p is modeled
// rather than measured in this environment).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parsimone"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
)

func main() {
	n := flag.Int("n", 200, "genes")
	m := flag.Int("m", 50, "observations")
	flag.Parse()

	data, _, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{N: *n, M: *m, Seed: 4096})
	if err != nil {
		log.Fatal(err)
	}

	opt := parsimone.DefaultOptions()
	opt.Seed = 3
	opt.RecordWork = true
	//parsivet:wallclock — example reports elapsed time; never feeds learned state
	start := time.Now()
	seq, err := parsimone.Learn(data, opt)
	if err != nil {
		log.Fatal(err)
	}
	//parsivet:wallclock — example reports elapsed time; never feeds learned state
	seqDur := time.Since(start)
	fmt.Printf("sequential run: %v (%d modules)\n", seqDur.Round(time.Millisecond), len(seq.Network.Modules))

	// Verification: the real parallel engine must reproduce the network
	// exactly at every rank count.
	opt.RecordWork = false
	for _, p := range []int{2, 4, 8} {
		par, err := parsimone.LearnParallel(p, data, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p=%-3d real run: identical network = %v (%d collectives, %d sends)\n",
			p, parsimone.Equal(seq.Network, par.Network),
			par.CommStats.Collectives, par.CommStats.Sends)
	}

	// Projection: calibrated work model, as used for the paper-scale
	// figures (benchtab fig5b/fig6/table2).
	model := trace.DefaultModel()
	model.Calibrate(seq.Workload, seqDur)
	fmt.Println("\nprojected strong scaling (calibrated work + postal communication model):")
	fmt.Printf("  %-6s %-12s %-10s %s\n", "p", "time", "speedup", "efficiency")
	t1 := model.Time(seq.Workload, 1, trace.StaticFine)
	for _, p := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		tp := model.Time(seq.Workload, p, trace.StaticFine)
		speedup := float64(t1) / float64(tp)
		fmt.Printf("  %-6d %-12v %-10.1f %.1f%%\n",
			p, tp.Round(time.Microsecond), speedup, speedup/float64(p)*100)
	}

	// Where the taper comes from: the §5.3.1 load-imbalance measure of
	// the split-scoring phase.
	ph := seq.Workload.Phase(splits.PhaseAssign)
	fmt.Println("\nsplit-scoring load imbalance (max−avg)/avg:")
	for _, p := range []int{64, 256, 1024} {
		fmt.Printf("  p=%-5d %.2f\n", p, model.PhaseImbalance(ph, p, trace.StaticFine))
	}
}
