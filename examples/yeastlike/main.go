// Yeastlike reproduces the paper's §5.3 scenario in miniature: learn a
// genome-scale-style regulatory network from a yeast-like compendium,
// reporting the per-task time breakdown (Fig. 5a) and the module-level
// regulatory graph with acyclicity enforced as post-processing.
package main

import (
	"flag"
	"fmt"
	"log"

	"parsimone"
	"parsimone/internal/core"
	"parsimone/internal/result"
)

func main() {
	n := flag.Int("n", 240, "genes")
	m := flag.Int("m", 60, "observations")
	p := flag.Int("p", 1, "ranks (1 = sequential)")
	flag.Parse()

	// The synthetic compendium stands in for the Tchourine et al. yeast
	// RNA-seq data set the paper uses (n=5716, m=2577), reduced for a
	// single node; see DESIGN.md for the substitution rationale.
	data, _, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: *n, M: *m, Seed: 2577,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yeast-like compendium: %d genes × %d observations\n", data.N, data.M)

	opt := parsimone.DefaultOptions()
	opt.Seed = 5716
	var out *parsimone.Output
	if *p > 1 {
		out, err = parsimone.LearnParallel(*p, data, opt)
	} else {
		out, err = parsimone.Learn(data, opt)
	}
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 5a-style breakdown: module learning dominates.
	total := out.Timers.Total()
	fmt.Println("\ntask breakdown:")
	for _, task := range []string{core.TaskGaneSH, core.TaskConsensus, core.TaskModules} {
		d := out.Timers.Get(task)
		fmt.Printf("  %-10s %12v  (%.1f%%)\n", task, d.Round(1e6), float64(d)/float64(total)*100)
	}

	fmt.Printf("\n%d modules learned; sizes:", len(out.Network.Modules))
	for _, mod := range out.Network.Modules {
		fmt.Printf(" %d", len(mod.Variables))
	}
	fmt.Println()

	// Module graph with the acyclicity post-processing step (§2.2).
	raw := out.Network.ModuleGraph()
	dag := result.EnforceAcyclic(raw, len(out.Network.Modules))
	fmt.Printf("\nmodule graph: %d raw edges, %d after enforcing acyclicity\n", len(raw), len(dag))
	for _, e := range dag {
		fmt.Printf("  M%d -> M%d (score %.2f)\n", e.From, e.To, e.Score)
	}
}
