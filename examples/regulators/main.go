// Regulators is a regulator-recovery study against synthetic ground truth:
// it learns a module network with the candidate-parent list restricted to
// the known regulator pool (the standard Lemon-Tree usage), then scores how
// well each module's ranked parents recover its true drivers — the accuracy
// analysis the paper's gated real data sets cannot support.
package main

import (
	"flag"
	"fmt"
	"log"

	"parsimone"
	"parsimone/internal/result"
)

func main() {
	n := flag.Int("n", 120, "genes")
	m := flag.Int("m", 80, "observations")
	regs := flag.Int("regulators", 8, "regulator pool size")
	seed := flag.Uint64("seed", 11, "data seed")
	flag.Parse()

	data, truth, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: *n, M: *m, Regulators: *regs, Noise: 0.3, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate parents: the regulator pool (variables 0..regs-1).
	opt := parsimone.DefaultOptions()
	opt.Seed = 23
	opt.Module.Tree.Updates = 4 // 3 trees per module for stabler parent scores
	opt.Module.Splits.NumSplits = 4
	for r := 0; r < *regs; r++ {
		opt.Module.Splits.Candidates = append(opt.Module.Splits.Candidates, r)
	}

	out, err := parsimone.Learn(data, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d modules learned from %d genes × %d observations\n\n",
		len(out.Network.Modules), data.N, data.M)

	// Match each learned module to the ground-truth module most of its
	// members belong to, then score its parent ranking against that
	// module's true regulators.
	var sumP1, sumMAP float64
	scored := 0
	for _, mod := range out.Network.Modules {
		votes := map[int]int{}
		for _, v := range mod.Variables {
			if tm := truth.ModuleOf[v]; tm >= 0 {
				votes[tm]++
			}
		}
		best, bestVotes := -1, 0
		for tm, c := range votes {
			if c > bestVotes {
				best, bestVotes = tm, c
			}
		}
		if best < 0 || len(mod.Parents) == 0 {
			continue
		}
		truthSet := map[int]bool{}
		for _, r := range truth.Regulators[best] {
			truthSet[r] = true
		}
		var ranked []int
		for _, p := range mod.Parents {
			ranked = append(ranked, p.Index)
		}
		k := len(truthSet)
		pk := result.PrecisionAtK(ranked, truthSet, k)
		ap := result.MeanAveragePrecision(ranked, truthSet)
		fmt.Printf("module %d (≙ true module %d, %d/%d members): P@%d=%.2f AP=%.2f, top parent %s\n",
			mod.ID, best, bestVotes, len(mod.Variables), k, pk, ap, mod.Parents[0].Name)
		sumP1 += pk
		sumMAP += ap
		scored++
	}
	if scored == 0 {
		log.Fatal("no module could be matched to ground truth")
	}
	// A random ranking of R candidates recovers a fraction ≈ t/R of the t
	// true regulators at any cutoff, so AP_random ≈ t/R ≈ 0.25 here.
	fmt.Printf("\nmean P@|truth| = %.2f, mean AP = %.2f over %d modules (random AP ≈ %.2f)\n",
		sumP1/float64(scored), sumMAP/float64(scored), scored,
		2.0/float64(*regs))
}
