// Multiomics demonstrates the integrative use case Lemon-Tree is known for
// (Bonnet et al. 2015, the paper's primary reference [13]: "Integrative
// multi-omics module network inference with Lemon-Tree"): two synthetic
// omics layers sharing the same regulatory programs — an expression layer
// and a noisier, rescaled "proteomics-like" layer — are stacked into one
// variable set, and modules are learned jointly. Genes and their protein
// products should co-cluster, and the module count should match the shared
// program count, not double it.
package main

import (
	"flag"
	"fmt"
	"log"

	"parsimone"
)

func main() {
	n := flag.Int("n", 60, "genes per omics layer")
	m := flag.Int("m", 60, "observations")
	flag.Parse()

	// Layer 1: expression, with ground truth.
	expr, truth, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: *n, M: *m, Modules: 3, Regulators: 5, Noise: 0.25, Seed: 404,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Layer 2: a proteomics-like readout of the same programs — the
	// expression signal rescaled, shifted, and noisier (translation adds
	// noise), built deterministically from layer 1.
	joint := parsimone.NewData(2*expr.N, expr.M)
	noise := noiseSource()
	for i := 0; i < expr.N; i++ {
		joint.Names[i] = "mRNA:" + expr.Names[i]
		joint.Names[expr.N+i] = "prot:" + expr.Names[i]
		for j := 0; j < expr.M; j++ {
			v := expr.At(i, j)
			joint.Set(i, j, v)
			joint.Set(expr.N+i, j, 0.6*v+0.3+0.35*noise())
		}
	}

	opt := parsimone.DefaultOptions()
	opt.Seed = 11
	opt.Ganesh.Updates = 3
	out, err := parsimone.Learn(joint, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint data: %d variables (%d mRNA + %d protein) × %d observations\n",
		joint.N, expr.N, expr.N, joint.M)
	fmt.Printf("learned %d modules (true shared programs: %d)\n\n",
		len(out.Network.Modules), truth.NumModules)

	// How integrative are the modules? Count cross-layer modules and
	// mRNA/protein pairs of the same gene landing in the same module.
	assign := out.Network.ModuleOf()
	pairsTogether, pairsScored := 0, 0
	for i := 0; i < expr.N; i++ {
		if truth.ModuleOf[i] < 0 {
			continue // regulators belong to no module
		}
		pairsScored++
		if assign[i] >= 0 && assign[i] == assign[expr.N+i] {
			pairsTogether++
		}
	}
	for _, mod := range out.Network.Modules {
		mrna, prot := 0, 0
		for _, v := range mod.Variables {
			if v < expr.N {
				mrna++
			} else {
				prot++
			}
		}
		kind := "cross-omics"
		if mrna == 0 || prot == 0 {
			kind = "single-layer"
		}
		fmt.Printf("module %d: %d mRNA + %d protein variables (%s)\n",
			mod.ID, mrna, prot, kind)
	}
	fmt.Printf("\nmRNA/protein pairs of the same gene co-clustered: %d of %d (%.0f%%)\n",
		pairsTogether, pairsScored, 100*float64(pairsTogether)/float64(pairsScored))
}

// noiseSource returns a deterministic standard-normal-ish generator (sum of
// uniforms) so the example does not need a seed flag.
func noiseSource() func() float64 {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	return func() float64 {
		var s float64
		for i := 0; i < 12; i++ {
			s += next()
		}
		return s - 6
	}
}
