// Quickstart: generate a small synthetic expression data set, learn a
// module network with the public API, and print the modules with their
// top-scored regulators.
package main

import (
	"fmt"
	"log"
	"os"

	"parsimone"
)

func main() {
	// A small module-structured data set: 60 genes (incl. 4 regulators)
	// in 40 conditions, 3 ground-truth modules.
	data, truth, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: 60, M: 40, Regulators: 4, Modules: 3, Noise: 0.3, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d genes × %d conditions, %d true modules\n",
		data.N, data.M, truth.NumModules)

	opt := parsimone.DefaultOptions()
	opt.Seed = 7
	opt.Ganesh.Updates = 3 // a few more Gibbs sweeps than the paper's timing config
	out, err := parsimone.Learn(data, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learned %d modules (tasks: %s)\n\n", len(out.Network.Modules), out.Timers)
	for _, mod := range out.Network.Modules {
		fmt.Printf("module %d: %d genes", mod.ID, len(mod.Variables))
		if len(mod.Parents) > 0 {
			top := mod.Parents[0]
			fmt.Printf(", top regulator %s (score %.2f)", top.Name, top.Score)
		}
		fmt.Println()
	}

	// The parallel engine learns exactly the same network.
	par, err := parsimone.LearnParallel(4, data, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel (p=4) network identical to sequential: %v\n",
		parsimone.Equal(out.Network, par.Network))

	// Persist as XML (the Lemon-Tree interchange format).
	f, err := os.Create("network.xml")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := out.Network.WriteXML(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote network.xml")
}
