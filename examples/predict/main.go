// Predict demonstrates using a learned module network as a probabilistic
// model, the purpose MoNets serve downstream (§2.1): train on part of the
// conditions, build the per-module regression-tree CPDs, and predict each
// module's expression in held-out conditions from the regulator values
// alone — comparing against the global-mean baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"parsimone"
)

func main() {
	n := flag.Int("n", 100, "genes")
	m := flag.Int("m", 100, "observations (last quarter held out)")
	flag.Parse()

	data, truth, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: *n, M: *m, Modules: 4, Regulators: 6, Noise: 0.3, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	holdout := *m / 4
	train, err := data.Subset(data.N, data.M-holdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d conditions, holding out %d\n", train.M, holdout)

	opt := parsimone.DefaultOptions()
	opt.Seed = 9
	opt.Ganesh.Updates = 3
	out, err := parsimone.Learn(train, opt)
	if err != nil {
		log.Fatal(err)
	}
	cpds, err := parsimone.BuildCPDs(train, opt, out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d modules with executable CPDs\n\n", len(cpds))

	// Standardize held-out observations with the training statistics is
	// approximated here by reusing the generator's scale (unit-ish); for
	// a real pipeline, persist the training transform.
	std := data.Clone()
	std.Standardize()

	fmt.Printf("%-8s %-10s %-14s %-14s\n", "module", "genes", "CPD RMSE", "baseline RMSE")
	var cpdTotal, baseTotal float64
	rows := 0
	for _, cpd := range cpds {
		vars := out.Modules[cpd.Module].Vars
		// Training global mean of the module (standardized scale).
		var trainMean float64
		for _, x := range vars {
			for j := 0; j < train.M; j++ {
				trainMean += std.At(x, j)
			}
		}
		trainMean /= float64(len(vars) * train.M)

		var seCPD, seBase float64
		count := 0
		for j := data.M - holdout; j < data.M; j++ {
			obs := make([]float64, data.N)
			for x := 0; x < data.N; x++ {
				obs[x] = std.At(x, j)
			}
			pred, _ := cpd.Predict(parsimone.QuantizeObservation(obs))
			var actual float64
			for _, x := range vars {
				actual += std.At(x, j)
			}
			actual /= float64(len(vars))
			seCPD += (pred - actual) * (pred - actual)
			seBase += (trainMean - actual) * (trainMean - actual)
			count++
		}
		rmseCPD := math.Sqrt(seCPD / float64(count))
		rmseBase := math.Sqrt(seBase / float64(count))
		cpdTotal += rmseCPD
		baseTotal += rmseBase
		rows++
		fmt.Printf("%-8d %-10d %-14.3f %-14.3f\n", cpd.Module, len(vars), rmseCPD, rmseBase)
	}
	if rows == 0 {
		log.Fatal("no modules learned")
	}
	fmt.Printf("\nmean held-out RMSE: CPD %.3f vs baseline %.3f (%d true modules in data)\n",
		cpdTotal/float64(rows), baseTotal/float64(rows), truth.NumModules)
}
