# Tier-1 verification (ROADMAP.md): formatting, vet, build, tests, and a
# race-detector pass over the concurrency-bearing packages (the goroutine
# message-passing runtime, the split-scoring paths, and the intra-rank
# worker pool).

GO ?= go

.PHONY: tier1 fmt vet build test race bench

tier1: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/splits/ ./internal/pool/

# Regenerate the full reduced-scale reproduction (minutes).
bench:
	$(GO) run ./cmd/benchtab all
