# Tier-1 verification (ROADMAP.md): formatting, vet, build, tests, a
# race-detector pass over the concurrency-bearing packages (the goroutine
# message-passing runtime, the split-scoring paths, the intra-rank worker
# pool, and the observability sinks), and the fault-injection suite under
# the race detector.

GO ?= go

.PHONY: tier1 fmt vet build test race faults fuzz bench

tier1: fmt vet build test race faults

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/splits/ ./internal/pool/ ./internal/obs/

# The fault-injection and crash-recovery suite, race-enabled: injected
# crashes/delays/drops in comm, the dynamic-coordinator watchdog, and the
# supervised restart-from-checkpoint acceptance tests.
faults:
	$(GO) test -race -run 'Fault|Recovery|Abort|Timeout|Failpoint|Restart|Checkpoint' \
		./internal/comm/ ./internal/splits/ ./internal/core/

# Short native-fuzzing pass over the TSV loader (the long-running campaign
# is `go test -fuzz=FuzzReadTSV ./internal/dataset/` without -fuzztime).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadTSV -fuzztime 10s ./internal/dataset/

# Regenerate the full reduced-scale reproduction (minutes).
bench:
	$(GO) run ./cmd/benchtab all
