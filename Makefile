# Tier-1 verification (ROADMAP.md): formatting, vet, the parsivet
# determinism lint, build, tests (shuffled so order dependence surfaces), a
# race-detector pass over the concurrency-bearing packages (the goroutine
# message-passing runtime, the split-scoring paths, the intra-rank worker
# pool, the observability sinks, and the core/GaneSH engines above them),
# and the fault-injection suite under the race detector.

GO ?= go

.PHONY: tier1 fmt vet lint build test race faults fuzz fuzz-score fuzz-wire bench

tier1: fmt vet lint build test race faults

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The parsivet suite (cmd/parsivet): repo-specific static enforcement of
# the determinism, PRNG, float-comparison, comm-symmetry, and worker-pool
# invariants. Standard library only — builds from the local module cache,
# no network. `parsivet -json ./...` emits machine-readable findings.
lint:
	$(GO) run ./cmd/parsivet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/splits/ ./internal/pool/ ./internal/obs/ \
		./internal/core/ ./internal/ganesh/ ./internal/wire/

# The fault-injection and crash-recovery suite, race-enabled: injected
# crashes/delays/drops in comm, the dynamic-coordinator watchdog, and the
# supervised restart-from-checkpoint acceptance tests.
faults:
	$(GO) test -race -run 'Fault|Recovery|Abort|Timeout|Failpoint|Restart|Checkpoint' \
		./internal/comm/ ./internal/splits/ ./internal/core/

# Short native-fuzzing pass over the TSV loader (the long-running campaign
# is `go test -fuzz=FuzzReadTSV ./internal/dataset/` without -fuzztime),
# plus the wire-format deserializers.
fuzz: fuzz-wire
	$(GO) test -run '^$$' -fuzz FuzzReadTSV -fuzztime 10s ./internal/dataset/

# Short native-fuzzing pass over the binary wire format (DESIGN §12): the
# checkpoint read path (format auto-detection, v3 binary, strict v2 JSON)
# and the network deserializers. No input may panic, and any network that
# decodes must validate. One invocation per target (go test allows a single
# -fuzz match per run); seed corpora live in testdata/fuzz/.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz 'FuzzWireCheckpoint$$' -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzWireNetwork$$' -fuzztime 10s ./internal/result/

# Short native-fuzzing pass over the score quantizers every selection path
# shares — no panics on NaN/±Inf/subnormals, weights on [0, MaxWeight], and
# monotone mappings — and the precomputed scoring kernel's bit-identity with
# Prior.LogML over arbitrary Stats and priors. One invocation per target (go
# test allows a single -fuzz match per run).
fuzz-score:
	$(GO) test -run '^$$' -fuzz 'FuzzQuantizeWeights$$' -fuzztime 10s ./internal/score/
	$(GO) test -run '^$$' -fuzz 'FuzzQuantizeProb$$' -fuzztime 10s ./internal/score/
	$(GO) test -run '^$$' -fuzz 'FuzzKernelLogML$$' -fuzztime 10s ./internal/score/

# Regenerate the full reduced-scale reproduction (minutes).
bench:
	$(GO) run ./cmd/benchtab all
