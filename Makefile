# Tier-1 verification (ROADMAP.md): formatting, vet, the parsivet
# determinism lint, build, tests (shuffled so order dependence surfaces), a
# race-detector pass over the concurrency-bearing packages (the goroutine
# message-passing runtime, the split-scoring paths, the intra-rank worker
# pool, the observability sinks, the core/GaneSH engines above them, and the
# supervised job runtime), and the fault-injection suite under the race
# detector.

GO ?= go

# Iterations of the seeded cancel/fault chaos soak (`make soak`).
SOAK_ITERS ?= 25

.PHONY: tier1 fmt vet lint lint-fast build test race faults soak fuzz fuzz-score fuzz-wire bench bench-batch serve-smoke

tier1: fmt vet lint build test race faults

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The parsivet suite (cmd/parsivet): repo-specific static enforcement of
# the determinism, PRNG, float-comparison, comm-symmetry, worker-pool, and
# whole-program reachability invariants (detreach/commreach/errsink walk the
# interprocedural call graph). Standard library only — builds from the local
# module cache, no network. `parsivet -json ./...` emits machine-readable
# findings. -strict-suppressions keeps //parsivet: audit comments honest by
# failing on stale ones; -time records the lint wall time on stderr.
lint:
	$(GO) run ./cmd/parsivet -time -strict-suppressions ./...

# Syntactic analyzers only — skips call-graph construction for a sub-second
# pre-commit loop. The full lint stays in tier1.
lint-fast:
	$(GO) run ./cmd/parsivet -fast ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/splits/ ./internal/pool/ ./internal/obs/ \
		./internal/core/ ./internal/ganesh/ ./internal/wire/ ./internal/jobs/ \
		./internal/serve/ ./cmd/parsimoned/

# The fault-injection, crash-recovery, and cancellation suite, race-enabled:
# injected crashes/delays/drops in comm, the dynamic-coordinator watchdog,
# the supervised restart-from-checkpoint acceptance tests, the
# cancel-at-every-check matrix, and the job runtime's drain-under-fault
# races.
faults:
	$(GO) test -race -run 'Fault|Recovery|Abort|Timeout|Failpoint|Restart|Checkpoint|Cancel|Drain|Deadline' \
		./internal/comm/ ./internal/splits/ ./internal/core/ ./internal/jobs/

# Seeded chaos soak: the deterministic MRG3-driven matrix of (world size,
# checkpoint format, cancel point, injected comm crash) combinations, each
# required to land on the bit-identical network directly or after a resume.
# Scale with SOAK_ITERS; the same seed replays the same plan sequence.
soak:
	PARSIMONE_SOAK_ITERS=$(SOAK_ITERS) $(GO) test -race -run 'TestSoakCancelFaultChaos' -v ./internal/core/

# Short native-fuzzing pass over the TSV loader (the long-running campaign
# is `go test -fuzz=FuzzReadTSV ./internal/dataset/` without -fuzztime),
# plus the wire-format deserializers.
fuzz: fuzz-wire
	$(GO) test -run '^$$' -fuzz FuzzReadTSV -fuzztime 10s ./internal/dataset/

# Short native-fuzzing pass over the binary wire format (DESIGN §12): the
# checkpoint read path (format auto-detection, v3 binary, strict v2 JSON)
# and the network deserializers. No input may panic, and any network that
# decodes must validate. One invocation per target (go test allows a single
# -fuzz match per run); seed corpora live in testdata/fuzz/.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz 'FuzzWireCheckpoint$$' -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzWireNetwork$$' -fuzztime 10s ./internal/result/

# Short native-fuzzing pass over the score quantizers every selection path
# shares — no panics on NaN/±Inf/subnormals, weights on [0, MaxWeight], and
# monotone mappings — and the precomputed scoring kernel's bit-identity with
# Prior.LogML over arbitrary Stats and priors. One invocation per target (go
# test allows a single -fuzz match per run).
fuzz-score:
	$(GO) test -run '^$$' -fuzz 'FuzzQuantizeWeights$$' -fuzztime 10s ./internal/score/
	$(GO) test -run '^$$' -fuzz 'FuzzQuantizeProb$$' -fuzztime 10s ./internal/score/
	$(GO) test -run '^$$' -fuzz 'FuzzKernelLogML$$' -fuzztime 10s ./internal/score/
	$(GO) test -run '^$$' -fuzz 'FuzzMemoLogML$$' -fuzztime 10s ./internal/score/

# Regenerate the full reduced-scale reproduction (minutes).
bench:
	$(GO) run ./cmd/benchtab all

# Reproducible end-to-end measurement of the batched split scorer: the
# `batch` experiment (unbatched DisableBatch leg vs batched leg, per-phase
# wall-clock breakdown, bit-identity column) as machine-readable JSON.
bench-batch:
	$(GO) run ./cmd/benchtab -json batch > BENCH_batch.json

# Boot the parsimoned daemon on an ephemeral port, drive one tiny learn job
# end-to-end through its HTTP surface (submit → long-poll done → download +
# decode the binary network → predict), and drain. Exits non-zero on any
# failure.
serve-smoke:
	$(GO) run ./cmd/parsimoned -addr 127.0.0.1:0 -smoke
