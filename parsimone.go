// Package parsimone is a Go implementation of ParsiMoNe — the parallel
// module-network construction system of "Parallel Construction of Module
// Networks" (Srivastava, Chockalingam, Aluru & Aluru, SC '21) — including
// the three Lemon-Tree learning tasks it parallelizes: GaneSH Gibbs-sampler
// co-clustering, spectral consensus clustering, and regression-tree module
// learning with parent-split assignment.
//
// # Quick start
//
//	data, _ := parsimone.LoadTSV("expression.tsv")
//	opt := parsimone.DefaultOptions()
//	opt.Seed = 42
//	out, err := parsimone.Learn(data, opt)          // sequential
//	out, err = parsimone.LearnParallel(8, data, opt) // 8 ranks, same network
//
// The parallel engine runs on an MPI-style message-passing runtime over
// goroutines and learns exactly the same network as the sequential engine
// for every rank count — the reproducibility guarantee of the paper's §4.2.
//
// Synthetic module-structured data with ground truth is available through
// GenerateSynthetic for benchmarking and validation.
package parsimone

import (
	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/eval"
	"parsimone/internal/genomica"
	"parsimone/internal/module"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/synth"
	"parsimone/internal/trace"
)

// Data is an n×m expression matrix with named variables.
type Data = dataset.Data

// Options configures a learning run; see DefaultOptions.
type Options = core.Options

// Output is the result of a learning run: the network, per-module
// artifacts, and the per-task timing breakdown.
type Output = core.Output

// Network is the learned module network artifact with XML/JSON
// serialization.
type Network = result.Network

// FaultSpec describes a deterministic failure to inject via Options.Inject —
// a crash at a pipeline failpoint ("ganesh", "consensus", or "module:<k>")
// or at a specific communication operation — honored by the supervised
// LearnParallel driver, which recovers it when Options.MaxRestarts allows.
type FaultSpec = core.FaultSpec

// RecoveryEvent records one supervised restart in Output.Recovery.
type RecoveryEvent = trace.RecoveryEvent

// SynthConfig configures the synthetic data generator.
type SynthConfig = synth.Config

// SynthTruth is the generative ground truth of a synthetic data set.
type SynthTruth = synth.Truth

// DefaultOptions returns the paper's minimum-run-time experiment
// configuration: one GaneSH run, one update step, one regression tree per
// module, every variable a candidate parent.
func DefaultOptions() Options { return core.DefaultOptions() }

// Learn runs the full pipeline sequentially.
func Learn(d *Data, opt Options) (*Output, error) { return core.Learn(d, opt) }

// LearnParallel runs the full pipeline on p message-passing ranks and
// returns the (identical) network with aggregate communication statistics.
func LearnParallel(p int, d *Data, opt Options) (*Output, error) {
	return core.LearnParallel(p, d, opt)
}

// LoadTSV reads an expression matrix from a tab-separated file (one row per
// variable: name, then one value per observation; optional header).
func LoadTSV(path string) (*Data, error) { return dataset.LoadTSV(path) }

// NewData allocates an empty n×m data set with generated variable names.
func NewData(n, m int) *Data { return dataset.New(n, m) }

// GenerateSynthetic produces a module-structured synthetic expression data
// set with known ground truth (modules, regulator programs, condition
// groups).
func GenerateSynthetic(cfg SynthConfig) (*Data, *SynthTruth, error) {
	return synth.Generate(cfg)
}

// Equal reports whether two learned networks are exactly identical —
// modules, memberships, and parent scores.
func Equal(a, b *Network) bool { return result.Equal(a, b) }

// CPD is a module's executable regression-tree conditional distribution.
type CPD = module.CPD

// BuildCPDs assembles one executable CPD per learned module, enabling
// prediction and held-out likelihood scoring with the learned network.
func BuildCPDs(d *Data, opt Options, out *Output) ([]*CPD, error) {
	return core.BuildCPDs(d, opt, out)
}

// QuantizeObservation maps a raw observation vector onto the fixed-point
// grid the CPDs consume.
func QuantizeObservation(values []float64) []int64 {
	out := make([]int64, len(values))
	for i, v := range values {
		out[i] = score.Quantize(v)
	}
	return out
}

// GenomicaParams configures the GENOMICA (Segal et al.) two-step learner,
// provided as a comparison system (paper §1.1, §6).
type GenomicaParams = genomica.Params

// GenomicaResult is a GENOMICA-learned module network.
type GenomicaResult = genomica.Result

// LearnGenomica runs the GENOMICA two-step algorithm on the data set
// (standardized and quantized like the Lemon-Tree engines).
func LearnGenomica(d *Data, par GenomicaParams, seed uint64) (*GenomicaResult, error) {
	work := d.Clone()
	work.Standardize()
	q := score.QuantizeData(work)
	return genomica.Learn(q, score.DefaultPrior(), par, prng.New(seed))
}

// CrossValidate runs k-fold cross-validation over observations, scoring
// each fold's CPDs on held-out conditions against the global-mean baseline.
func CrossValidate(d *Data, opt Options, k int) (*eval.CVResult, error) {
	return eval.CrossValidate(d, opt, k)
}
