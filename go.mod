module parsimone

go 1.22
