package parsimone_test

import (
	"fmt"

	"parsimone"
)

// ExampleLearn shows the minimal end-to-end flow: synthetic data in, module
// network out, with the parallel engine verified to agree exactly.
func ExampleLearn() {
	data, _, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: 30, M: 24, Modules: 2, Regulators: 3, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	opt := parsimone.DefaultOptions()
	opt.Seed = 11
	opt.Module.Splits.MaxSteps = 16 // keep the example quick

	seq, err := parsimone.Learn(data, opt)
	if err != nil {
		panic(err)
	}
	par, err := parsimone.LearnParallel(3, data, opt)
	if err != nil {
		panic(err)
	}
	fmt.Println("parallel identical:", parsimone.Equal(seq.Network, par.Network))
	// Output:
	// parallel identical: true
}

// ExampleBuildCPDs demonstrates turning a learned network into executable
// conditional distributions and predicting a module's expression.
func ExampleBuildCPDs() {
	data, _, err := parsimone.GenerateSynthetic(parsimone.SynthConfig{
		N: 30, M: 24, Modules: 2, Regulators: 3, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	opt := parsimone.DefaultOptions()
	opt.Seed = 11
	opt.Module.Splits.MaxSteps = 16

	out, err := parsimone.Learn(data, opt)
	if err != nil {
		panic(err)
	}
	cpds, err := parsimone.BuildCPDs(data, opt, out)
	if err != nil {
		panic(err)
	}
	// Predict module 0's distribution under the first observed condition.
	std := data.Clone()
	std.Standardize()
	obs := make([]float64, std.N)
	for x := 0; x < std.N; x++ {
		obs[x] = std.At(x, 0)
	}
	mean, variance := cpds[0].Predict(parsimone.QuantizeObservation(obs))
	fmt.Println("finite prediction:", !isNaN(mean) && variance > 0)
	// Output:
	// finite prediction: true
}

func isNaN(x float64) bool { return x != x }
