package parsimone

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5), each regenerating its experiment at Quick scale through the same
// harness as cmd/benchtab (run `benchtab all` for the full reduced-scale
// reproduction and EXPERIMENTS.md for the recorded results). The benchmark
// time is the time to regenerate the whole experiment.

import (
	"io"
	"testing"

	"parsimone/internal/bench"
)

// runExperiment regenerates experiment id once per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := bench.Run(id, bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		table.Fprint(io.Discard)
	}
}

// BenchmarkTable1 regenerates Table 1: reference (Lemon-Tree-style) vs
// optimized sequential run time with output-identity verification.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig3 regenerates Figure 3: sequential run-time growth vs m.
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4: sequential run-time growth vs n.
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5a regenerates Figure 5a: sequential per-task breakdown.
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Figure 5b: strong-scaling speedup p=2…1024.
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig5c regenerates Figure 5c: per-task breakdown at p=1024.
func BenchmarkFig5c(b *testing.B) { runExperiment(b, "fig5c") }

// BenchmarkFig6 regenerates Figure 6: the complete yeast-scale data set,
// p=4…4096 relative to T₄.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable2 regenerates Table 2: the complete thaliana-scale data
// set, p=256…4096 relative to T₂₅₆.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkImbalance regenerates the §5.3.1 load-imbalance measurement.
func BenchmarkImbalance(b *testing.B) { runExperiment(b, "imbalance") }

// BenchmarkAblationDist regenerates the split-distribution-scheme ablation
// (fine vs coarse vs dynamic; §3.2.3 and §6).
func BenchmarkAblationDist(b *testing.B) { runExperiment(b, "ablation-dist") }

// BenchmarkThreads regenerates the intra-rank worker-pool measurement:
// wall clock at W∈{1,2,4,8} with per-worker split-scoring counters (real
// speedup >1 requires a multicore host).
func BenchmarkThreads(b *testing.B) { runExperiment(b, "threads") }

// BenchmarkEstimate regenerates the §5.2.2 m² extrapolation check.
func BenchmarkEstimate(b *testing.B) { runExperiment(b, "estimate") }

// BenchmarkDeterminism regenerates the §4.2 output-identity verification.
func BenchmarkDeterminism(b *testing.B) { runExperiment(b, "determinism") }

// BenchmarkLearnSequential measures the optimized sequential engine on the
// Quick yeast-scale workload (end-to-end pipeline time).
func BenchmarkLearnSequential(b *testing.B) {
	data, _, err := GenerateSynthetic(SynthConfig{N: 80, M: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Module.Splits.MaxSteps = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(data, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnParallelP4 measures the message-passing engine at p=4 on
// the same workload (wall time on this host reflects runtime overhead, not
// physical speedup; see DESIGN.md).
func BenchmarkLearnParallelP4(b *testing.B) {
	data, _, err := GenerateSynthetic(SynthConfig{N: 80, M: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Module.Splits.MaxSteps = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LearnParallel(4, data, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareGenomica regenerates the §1.1 robustness comparison
// between the Lemon-Tree pipeline and the GENOMICA two-step algorithm.
func BenchmarkCompareGenomica(b *testing.B) { runExperiment(b, "compare-genomica") }

// BenchmarkCrossVal regenerates the held-out cross-validation check.
func BenchmarkCrossVal(b *testing.B) { runExperiment(b, "crossval") }

// BenchmarkCommVolume regenerates the measured communication-volume
// comparison of the three split distribution paths.
func BenchmarkCommVolume(b *testing.B) { runExperiment(b, "comm-volume") }

// BenchmarkRecovery regenerates the crash-recovery experiment: checkpointing
// overhead plus crash-at-failpoint → supervised restart → bit-identity
// verification at each task boundary and module crash point.
func BenchmarkRecovery(b *testing.B) { runExperiment(b, "recovery") }
